#!/usr/bin/env python3
"""Project-invariant linter for the uMiddle tree.

Enforces repo-specific correctness rules that no off-the-shelf tool knows.
The reproduction's central claim is that every run of the simulated world is
deterministic (DESIGN.md, "Correctness & determinism"); most of these rules
exist to keep nondeterminism from leaking back in:

  wall-clock   src/ may not read host time: no std::chrono::system_clock /
               steady_clock / high_resolution_clock, no time()/gettimeofday/
               clock_gettime, no <ctime>. Virtual time (sim::Scheduler) only.
  randomness   src/ may not use std::rand/srand, std::random_device, <random>,
               or getpid/this_thread ids as entropy. The seeded splitmix64 Rng
               in common/rand.hpp is the only sanctioned randomness source.
  threads      sim-deterministic modules may not include <thread>, <mutex>,
               <condition_variable>, <future> or <atomic>: the discrete-event
               core is single-threaded by contract. (common/log.* is the one
               sanctioned exception — the host-side log sink is thread-safe.)
  ptr-keys     no std::unordered_map/unordered_set keyed on a raw pointer:
               iteration order would depend on allocation addresses, which
               differ between runs and would break the trace-digest audit.
  new-delete   no raw new/delete expressions; ownership goes through
               std::unique_ptr/std::shared_ptr (make_unique/make_shared).
  nodiscard    every function declared in a header with a Result<...> return
               must be [[nodiscard]] (belt and braces on top of the
               class-level [[nodiscard]]: the annotation survives even if the
               class attribute is ever lost, and documents intent at the API).
  fault-loss   no direct mutation of a segment's `.loss` field outside
               src/netsim/fault.cpp: packet loss (like every injected fault)
               goes through net.faults().set_loss()/set_burst_loss() so the
               FaultPlane's introspection counters stay authoritative.
  ack-origin   no AckFrame construction outside src/core/{umtp,transport}.cpp:
               acks retire sender ledger entries (DESIGN.md §11), so a frame
               fabricated elsewhere could discard undelivered messages.
  range-copy   no by-value `for (auto x : ...)` range-for loops in src/: an
               `auto` loop variable deep-copies every element (profiles,
               frames, std::function events), which is exactly the class of
               hidden copy PR 2 removed from the hot paths. Iterate by
               `const auto&` (or `auto&` / `auto&&` when mutating).

Run directly:      python3 tools/lint.py --root .
Run via ctest:     ctest -R lint
Self-test (proves every rule still fires on a seeded violation):
                   python3 tools/lint.py --root . --self-test
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Callable, Iterable, NamedTuple

SRC_EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}


class Violation(NamedTuple):
    rule: str
    path: str
    line: int
    text: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.text}"


def strip_comments_and_strings(source: str) -> str:
    """Blank out comments and string/char literals, preserving line numbers.

    A lexer-grade pass is overkill; this handles //, /* */, "..." and '...'
    well enough for token bans (escaped quotes included).
    """
    out = []
    i, n = 0, len(source)
    while i < n:
        c = source[i]
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            j = source.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            end = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in source[i:end]))
            i = end
        elif c in ('"', "'"):
            quote = c
            j = i + 1
            while j < n and source[j] != quote:
                j += 2 if source[j] == "\\" else 1
            out.append(quote + " " * max(0, min(j, n) - i - 1))
            if j < n:
                out.append(quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --- rules ----------------------------------------------------------------------

WALL_CLOCK_PATTERNS = [
    (re.compile(r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"),
     "host clock read; simulated code uses virtual time (sim::Scheduler::now)"),
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)::now\b"),
     "host clock read; simulated code uses virtual time (sim::Scheduler::now)"),
    (re.compile(r"(?:\btime|\bgettimeofday|\bclock_gettime|\blocaltime|\bgmtime)\s*\("),
     "C time API; simulated code uses virtual time (sim::Scheduler::now)"),
    (re.compile(r"#\s*include\s*<ctime>"), "<ctime> banned in src/ (virtual time only)"),
]

RANDOMNESS_PATTERNS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("),
     "unseeded C randomness; use the splitmix64 Rng from common/rand.hpp"),
    (re.compile(r"\brandom_device\b"),
     "entropy source; use the seeded Rng from common/rand.hpp"),
    (re.compile(r"#\s*include\s*<random>"),
     "<random> banned in src/; common/rand.hpp Rng is the only randomness source"),
    (re.compile(r"\bgetpid\s*\(|\bthis_thread::get_id\b"),
     "process/thread identity as entropy breaks reproducibility"),
]

THREADING_RE = re.compile(r"#\s*include\s*<(thread|mutex|condition_variable|future|atomic)>")
# The log sink is host-side infrastructure shared with (future) threaded
# front-ends; it is the only module allowed to synchronize.
THREADING_ALLOWLIST = {"src/common/log.cpp", "src/common/log.hpp"}

PTR_KEY_RE = re.compile(r"unordered_(?:map|set)\s*<[^,>]*\*")

NEW_DELETE_RE = re.compile(r"(?<![:\w])(?:new|delete(?:\s*\[\s*\])?)\s+[A-Za-z_(]")
NEW_DELETE_ALLOW_RE = re.compile(r"=\s*delete\b")  # deleted special members

RESULT_DECL_RE = re.compile(r"^\s*(?:virtual\s+)?Result<[^;{}]*>\s+\w+\s*\(")
NODISCARD_RE = re.compile(r"\[\[nodiscard\]\]")

# A range-for whose loop variable is a plain (possibly const) `auto` — i.e. a
# deep copy per element. By-reference forms (`auto&`, `const auto&`, `auto&&`)
# and pointers (`auto*`) never match because `auto` is then not followed by
# whitespace-then-identifier. Classic `for (auto it = ...; ...)` loops are
# excluded: the match must reach a standalone `:` (not `::`) before any `;`
# or parenthesis.
RANGE_FOR_COPY_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?auto\s+(?![&*])[A-Za-z_\[][^;()]*?(?<!:):(?!:)")

# Loss (and fault state generally) is owned by the per-world FaultPlane: a
# direct write to a SegmentSpec's `.loss` field bypasses the fault plane's
# introspection counters and its determinism accounting, so injected faults
# would not show up in fault.* metrics or the chaos tests' same-seed replay.
# fault.cpp itself is the single sanctioned writer.
FAULT_LOSS_RE = re.compile(r"\.\s*loss\s*=(?!=)")
FAULT_LOSS_ALLOWLIST = {"src/netsim/fault.cpp"}

# Telemetry instruments must be per-world (owned by net::Network): a `static`
# or `inline` variable — or a static/inline accessor returning one — would be
# shared across worlds in one process, so a second same-seed run would observe
# the first run's counts and the byte-identical-snapshot contract would break.
# (`static_cast`/`static_assert` never match: no word boundary after "static".)
GLOBAL_TELEMETRY_RE = re.compile(
    r"\b(?:static|inline)\b[^;{(]*\b(?:MetricsRegistry|Tracer|Counter|Gauge|Histogram)\b")


def scan_tokens(path: str, code: str, patterns, rule: str) -> Iterable[Violation]:
    for lineno, line in enumerate(code.splitlines(), 1):
        for pattern, why in patterns:
            if pattern.search(line):
                yield Violation(rule, path, lineno, why)


def check_wall_clock(path: str, code: str) -> Iterable[Violation]:
    yield from scan_tokens(path, code, WALL_CLOCK_PATTERNS, "wall-clock")


def check_randomness(path: str, code: str) -> Iterable[Violation]:
    yield from scan_tokens(path, code, RANDOMNESS_PATTERNS, "randomness")


def check_threading(path: str, code: str) -> Iterable[Violation]:
    if path in THREADING_ALLOWLIST:
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        m = THREADING_RE.search(line)
        if m:
            yield Violation("threads", path, lineno,
                            f"<{m.group(1)}> in a sim-deterministic module "
                            "(the event core is single-threaded by contract)")


def check_pointer_keys(path: str, code: str) -> Iterable[Violation]:
    for lineno, line in enumerate(code.splitlines(), 1):
        if PTR_KEY_RE.search(line):
            yield Violation("ptr-keys", path, lineno,
                            "unordered container keyed on a pointer: iteration "
                            "order follows allocation addresses and diverges "
                            "across runs (use an Id type or an ordered map)")


def check_new_delete(path: str, code: str) -> Iterable[Violation]:
    for lineno, line in enumerate(code.splitlines(), 1):
        if NEW_DELETE_ALLOW_RE.search(line):
            continue
        if NEW_DELETE_RE.search(line):
            yield Violation("new-delete", path, lineno,
                            "raw new/delete; ownership goes through "
                            "std::make_unique / std::make_shared")


def check_nodiscard(path: str, code: str) -> Iterable[Violation]:
    if not path.endswith((".hpp", ".h")):
        return
    lines = code.splitlines()
    for lineno, line in enumerate(lines, 1):
        if not RESULT_DECL_RE.match(line):
            continue
        prev = lines[lineno - 2] if lineno >= 2 else ""
        if NODISCARD_RE.search(line) or NODISCARD_RE.search(prev):
            continue
        yield Violation("nodiscard", path, lineno,
                        "Result-returning declaration without [[nodiscard]]")


def check_range_for_copy(path: str, code: str) -> Iterable[Violation]:
    for lineno, line in enumerate(code.splitlines(), 1):
        if RANGE_FOR_COPY_RE.search(line):
            yield Violation("range-copy", path, lineno,
                            "by-value `for (auto x : ...)` deep-copies every "
                            "element; iterate by `const auto&` (or `auto&` / "
                            "`auto&&` when mutating)")


def check_fault_loss(path: str, code: str) -> Iterable[Violation]:
    if path in FAULT_LOSS_ALLOWLIST:
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        if FAULT_LOSS_RE.search(line):
            yield Violation("fault-loss", path, lineno,
                            "direct segment loss mutation; go through "
                            "net.faults().set_loss()/set_burst_loss() so the "
                            "fault plane's accounting stays authoritative")


# An ACK frame drives the sender's retire/dedup ledger (DESIGN.md §11): a
# fabricated one can acknowledge — and silently discard — messages that were
# never delivered. Only the UMTP codec and the transport session machinery may
# construct one; everything else (including tests probing the receive path)
# must hand-assemble raw bytes so the forgery is explicit at the call site.
# The pattern matches brace construction, not mentions: `std::get_if<AckFrame>`
# and friends stay legal everywhere.
ACK_ORIGIN_RE = re.compile(r"\bAckFrame\s*\{")
ACK_ORIGIN_ALLOWLIST = {
    "src/core/umtp.hpp",       # the frame definition itself
    "src/core/umtp.cpp",       # codec: decode materialises received ACKs
    "src/core/transport.cpp",  # session machinery: the only legitimate sender
}


def check_ack_origin(path: str, code: str) -> Iterable[Violation]:
    if path in ACK_ORIGIN_ALLOWLIST:
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        if ACK_ORIGIN_RE.search(line):
            yield Violation("ack-origin", path, lineno,
                            "AckFrame constructed outside the transport "
                            "session machinery; acks retire ledger entries, "
                            "so only src/core/{umtp,transport}.cpp may build "
                            "them (DESIGN.md §11)")


def check_global_telemetry(path: str, code: str) -> Iterable[Violation]:
    for lineno, line in enumerate(code.splitlines(), 1):
        if GLOBAL_TELEMETRY_RE.search(line):
            yield Violation("global-telemetry", path, lineno,
                            "process-global telemetry instrument; metrics and "
                            "tracers are per-world state owned by net::Network "
                            "(DESIGN.md §9)")


CHECKS: list[Callable[[str, str], Iterable[Violation]]] = [
    check_wall_clock,
    check_randomness,
    check_threading,
    check_pointer_keys,
    check_new_delete,
    check_nodiscard,
    check_range_for_copy,
    check_fault_loss,
    check_ack_origin,
    check_global_telemetry,
]


def lint_file(rel_path: str, source: str) -> list[Violation]:
    code = strip_comments_and_strings(source)
    found: list[Violation] = []
    for check in CHECKS:
        found.extend(check(rel_path, code))
    return found


def lint_tree(root: pathlib.Path) -> list[Violation]:
    violations: list[Violation] = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in SRC_EXTENSIONS or not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        violations.extend(lint_file(rel, path.read_text(encoding="utf-8")))
    return violations


# --- self-test -------------------------------------------------------------------

SEEDED_VIOLATIONS = [
    # (rule expected to fire, pretend-path, source snippet)
    ("wall-clock", "src/sim/evil.cpp",
     "auto t = std::chrono::system_clock::now();\n"),
    ("wall-clock", "src/core/evil.cpp",
     "#include <ctime>\nlong now = time(nullptr);\n"),
    ("randomness", "src/core/evil.cpp",
     "int r = std::rand();\n"),
    ("randomness", "src/netsim/evil.cpp",
     "#include <random>\nstd::random_device rd;\n"),
    ("threads", "src/sim/evil.cpp",
     "#include <thread>\n#include <mutex>\n"),
    ("ptr-keys", "src/core/evil.hpp",
     "std::unordered_map<Stream*, int> by_stream;\n"),
    ("new-delete", "src/core/evil.cpp",
     "auto* p = new Translator();\ndelete p;\n"),
    ("nodiscard", "src/xml/evil.hpp",
     "Result<Element> parse_evil(std::string_view text);\n"),
    ("range-copy", "src/core/evil.cpp",
     "for (auto profile : profiles_) { use(profile); }\n"),
    ("range-copy", "src/core/evil.cpp",
     "for (const auto [k, v] : meta_) { use(k, v); }\n"),
    ("fault-loss", "src/netsim/evil.cpp",
     "segments_.at(seg).spec.loss = 0.5;\n"),
    ("ack-origin", "src/upnp/evil.cpp",
     "auto ack = umtp::AckFrame{epoch, count};\n"),
    ("global-telemetry", "src/core/evil.cpp",
     "static obs::MetricsRegistry g_registry;\n"),
    ("global-telemetry", "src/obs/evil.hpp",
     "inline Tracer& global_tracer() { return the_tracer; }\n"),
]

CLEAN_SNIPPETS = [
    # Things that look suspicious but are sanctioned; the linter must pass them.
    ("src/sim/fine.cpp",
     "// std::chrono::system_clock::now() is banned — in a comment it is fine\n"
     'const char* s = "time(nullptr) inside a string literal";\n'
     "auto d = std::chrono::nanoseconds(5);\n"),
    ("src/core/fine.hpp",
     "[[nodiscard]] Result<int> parse_fine(std::string_view text);\n"
     "Stream(const Stream&) = delete;\n"
     "auto p = std::make_unique<int>(3);\n"
     "sim::Duration busy_time(int frames);\n"),
    ("src/common/log.cpp",
     "#include <mutex>\n"),
    ("src/obs/fine.hpp",
     "obs::Counter& udp_datagrams_;\n"
     "obs::Histogram connect_rtt{latency_bounds_ns()};\n"
     "auto n = static_cast<std::uint64_t>(counter.value());\n"),
    ("src/core/fine.cpp",
     "if (auto* ack = std::get_if<umtp::AckFrame>(&frame)) { use(*ack); }\n"
     "void handle_ack(const umtp::AckFrame& ack);\n"),
    ("src/netsim/fine.cpp",
     "double loss = spec.loss;\n"
     "if (spec.loss == 0.0) { return; }\n"
     "net_.faults().set_loss(segment_, loss);\n"),
    ("src/core/fine.cpp",
     "for (const auto& p : profiles_) { use(p); }\n"
     "for (auto& [k, v] : meta_) { use(k, v); }\n"
     "for (auto&& ev : events_) { use(ev); }\n"
     "for (auto* port : shape.digital_inputs()) { use(port); }\n"
     "for (auto it = by_name_.begin(); it != by_name_.end(); ++it) { }\n"
     "for (auto ib = std::next(ia); ib != gadgets_.end(); ++ib) { }\n"
     "for (char c : text) { use(c); }\n"),
]


def self_test() -> int:
    failures = 0
    for rule, path, snippet in SEEDED_VIOLATIONS:
        fired = {v.rule for v in lint_file(path, snippet)}
        if rule not in fired:
            print(f"SELF-TEST FAIL: rule '{rule}' did not fire on seeded "
                  f"violation in {path} (fired: {sorted(fired) or 'none'})")
            failures += 1
    for path, snippet in CLEAN_SNIPPETS:
        extra = lint_file(path, snippet)
        if extra:
            print(f"SELF-TEST FAIL: clean snippet {path} raised: "
                  + "; ".join(str(v) for v in extra))
            failures += 1
    if failures == 0:
        print(f"self-test ok: {len(SEEDED_VIOLATIONS)} seeded violations caught, "
              f"{len(CLEAN_SNIPPETS)} sanctioned snippets passed")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".", help="repository root (contains src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a seeded violation")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} has no src/ directory", file=sys.stderr)
        return 2
    violations = lint_tree(root)
    for v in violations:
        print(v)
    if violations:
        print(f"\n{len(violations)} violation(s). These rules guard the "
              "determinism contract — see tools/lint.py docstring and "
              "DESIGN.md 'Correctness & determinism'.")
        return 1
    print("lint ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
