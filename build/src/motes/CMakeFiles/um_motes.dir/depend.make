# Empty dependencies file for um_motes.
# This may be replaced when dependencies are built.
