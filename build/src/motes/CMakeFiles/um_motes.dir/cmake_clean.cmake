file(REMOVE_RECURSE
  "CMakeFiles/um_motes.dir/mapper.cpp.o"
  "CMakeFiles/um_motes.dir/mapper.cpp.o.d"
  "CMakeFiles/um_motes.dir/motes.cpp.o"
  "CMakeFiles/um_motes.dir/motes.cpp.o.d"
  "libum_motes.a"
  "libum_motes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_motes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
