file(REMOVE_RECURSE
  "libum_motes.a"
)
