file(REMOVE_RECURSE
  "libum_webservice.a"
)
