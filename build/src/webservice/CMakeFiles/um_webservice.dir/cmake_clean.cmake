file(REMOVE_RECURSE
  "CMakeFiles/um_webservice.dir/mapper.cpp.o"
  "CMakeFiles/um_webservice.dir/mapper.cpp.o.d"
  "CMakeFiles/um_webservice.dir/registry.cpp.o"
  "CMakeFiles/um_webservice.dir/registry.cpp.o.d"
  "CMakeFiles/um_webservice.dir/service.cpp.o"
  "CMakeFiles/um_webservice.dir/service.cpp.o.d"
  "libum_webservice.a"
  "libum_webservice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_webservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
