# Empty dependencies file for um_webservice.
# This may be replaced when dependencies are built.
