file(REMOVE_RECURSE
  "libum_sim.a"
)
