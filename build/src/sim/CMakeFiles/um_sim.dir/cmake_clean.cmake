file(REMOVE_RECURSE
  "CMakeFiles/um_sim.dir/scheduler.cpp.o"
  "CMakeFiles/um_sim.dir/scheduler.cpp.o.d"
  "libum_sim.a"
  "libum_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
