# Empty compiler generated dependencies file for um_sim.
# This may be replaced when dependencies are built.
