# Empty dependencies file for um_rmi.
# This may be replaced when dependencies are built.
