file(REMOVE_RECURSE
  "CMakeFiles/um_rmi.dir/mapper.cpp.o"
  "CMakeFiles/um_rmi.dir/mapper.cpp.o.d"
  "CMakeFiles/um_rmi.dir/protocol.cpp.o"
  "CMakeFiles/um_rmi.dir/protocol.cpp.o.d"
  "CMakeFiles/um_rmi.dir/registry.cpp.o"
  "CMakeFiles/um_rmi.dir/registry.cpp.o.d"
  "CMakeFiles/um_rmi.dir/service.cpp.o"
  "CMakeFiles/um_rmi.dir/service.cpp.o.d"
  "libum_rmi.a"
  "libum_rmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_rmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
