file(REMOVE_RECURSE
  "libum_rmi.a"
)
