file(REMOVE_RECURSE
  "CMakeFiles/um_apps.dir/g2ui.cpp.o"
  "CMakeFiles/um_apps.dir/g2ui.cpp.o.d"
  "CMakeFiles/um_apps.dir/pads.cpp.o"
  "CMakeFiles/um_apps.dir/pads.cpp.o.d"
  "libum_apps.a"
  "libum_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
