file(REMOVE_RECURSE
  "libum_apps.a"
)
