# Empty compiler generated dependencies file for um_apps.
# This may be replaced when dependencies are built.
