# Empty dependencies file for um_core.
# This may be replaced when dependencies are built.
