file(REMOVE_RECURSE
  "CMakeFiles/um_core.dir/directory.cpp.o"
  "CMakeFiles/um_core.dir/directory.cpp.o.d"
  "CMakeFiles/um_core.dir/native_device.cpp.o"
  "CMakeFiles/um_core.dir/native_device.cpp.o.d"
  "CMakeFiles/um_core.dir/profile.cpp.o"
  "CMakeFiles/um_core.dir/profile.cpp.o.d"
  "CMakeFiles/um_core.dir/qos.cpp.o"
  "CMakeFiles/um_core.dir/qos.cpp.o.d"
  "CMakeFiles/um_core.dir/runtime.cpp.o"
  "CMakeFiles/um_core.dir/runtime.cpp.o.d"
  "CMakeFiles/um_core.dir/shape.cpp.o"
  "CMakeFiles/um_core.dir/shape.cpp.o.d"
  "CMakeFiles/um_core.dir/translator.cpp.o"
  "CMakeFiles/um_core.dir/translator.cpp.o.d"
  "CMakeFiles/um_core.dir/transport.cpp.o"
  "CMakeFiles/um_core.dir/transport.cpp.o.d"
  "CMakeFiles/um_core.dir/umtp.cpp.o"
  "CMakeFiles/um_core.dir/umtp.cpp.o.d"
  "CMakeFiles/um_core.dir/usdl.cpp.o"
  "CMakeFiles/um_core.dir/usdl.cpp.o.d"
  "libum_core.a"
  "libum_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
