file(REMOVE_RECURSE
  "libum_core.a"
)
