
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/directory.cpp" "src/core/CMakeFiles/um_core.dir/directory.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/directory.cpp.o.d"
  "/root/repo/src/core/native_device.cpp" "src/core/CMakeFiles/um_core.dir/native_device.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/native_device.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/um_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/qos.cpp" "src/core/CMakeFiles/um_core.dir/qos.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/qos.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/um_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/shape.cpp" "src/core/CMakeFiles/um_core.dir/shape.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/shape.cpp.o.d"
  "/root/repo/src/core/translator.cpp" "src/core/CMakeFiles/um_core.dir/translator.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/translator.cpp.o.d"
  "/root/repo/src/core/transport.cpp" "src/core/CMakeFiles/um_core.dir/transport.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/transport.cpp.o.d"
  "/root/repo/src/core/umtp.cpp" "src/core/CMakeFiles/um_core.dir/umtp.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/umtp.cpp.o.d"
  "/root/repo/src/core/usdl.cpp" "src/core/CMakeFiles/um_core.dir/usdl.cpp.o" "gcc" "src/core/CMakeFiles/um_core.dir/usdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/um_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/um_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/um_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/um_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
