# Empty compiler generated dependencies file for um_upnp.
# This may be replaced when dependencies are built.
