
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/upnp/control_point.cpp" "src/upnp/CMakeFiles/um_upnp.dir/control_point.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/control_point.cpp.o.d"
  "/root/repo/src/upnp/description.cpp" "src/upnp/CMakeFiles/um_upnp.dir/description.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/description.cpp.o.d"
  "/root/repo/src/upnp/device.cpp" "src/upnp/CMakeFiles/um_upnp.dir/device.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/device.cpp.o.d"
  "/root/repo/src/upnp/devices.cpp" "src/upnp/CMakeFiles/um_upnp.dir/devices.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/devices.cpp.o.d"
  "/root/repo/src/upnp/gena.cpp" "src/upnp/CMakeFiles/um_upnp.dir/gena.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/gena.cpp.o.d"
  "/root/repo/src/upnp/http.cpp" "src/upnp/CMakeFiles/um_upnp.dir/http.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/http.cpp.o.d"
  "/root/repo/src/upnp/mapper.cpp" "src/upnp/CMakeFiles/um_upnp.dir/mapper.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/mapper.cpp.o.d"
  "/root/repo/src/upnp/soap.cpp" "src/upnp/CMakeFiles/um_upnp.dir/soap.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/soap.cpp.o.d"
  "/root/repo/src/upnp/ssdp.cpp" "src/upnp/CMakeFiles/um_upnp.dir/ssdp.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/ssdp.cpp.o.d"
  "/root/repo/src/upnp/usdl_docs.cpp" "src/upnp/CMakeFiles/um_upnp.dir/usdl_docs.cpp.o" "gcc" "src/upnp/CMakeFiles/um_upnp.dir/usdl_docs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/um_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/um_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/um_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/um_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/um_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
