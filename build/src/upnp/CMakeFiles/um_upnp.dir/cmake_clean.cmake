file(REMOVE_RECURSE
  "CMakeFiles/um_upnp.dir/control_point.cpp.o"
  "CMakeFiles/um_upnp.dir/control_point.cpp.o.d"
  "CMakeFiles/um_upnp.dir/description.cpp.o"
  "CMakeFiles/um_upnp.dir/description.cpp.o.d"
  "CMakeFiles/um_upnp.dir/device.cpp.o"
  "CMakeFiles/um_upnp.dir/device.cpp.o.d"
  "CMakeFiles/um_upnp.dir/devices.cpp.o"
  "CMakeFiles/um_upnp.dir/devices.cpp.o.d"
  "CMakeFiles/um_upnp.dir/gena.cpp.o"
  "CMakeFiles/um_upnp.dir/gena.cpp.o.d"
  "CMakeFiles/um_upnp.dir/http.cpp.o"
  "CMakeFiles/um_upnp.dir/http.cpp.o.d"
  "CMakeFiles/um_upnp.dir/mapper.cpp.o"
  "CMakeFiles/um_upnp.dir/mapper.cpp.o.d"
  "CMakeFiles/um_upnp.dir/soap.cpp.o"
  "CMakeFiles/um_upnp.dir/soap.cpp.o.d"
  "CMakeFiles/um_upnp.dir/ssdp.cpp.o"
  "CMakeFiles/um_upnp.dir/ssdp.cpp.o.d"
  "CMakeFiles/um_upnp.dir/usdl_docs.cpp.o"
  "CMakeFiles/um_upnp.dir/usdl_docs.cpp.o.d"
  "libum_upnp.a"
  "libum_upnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_upnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
