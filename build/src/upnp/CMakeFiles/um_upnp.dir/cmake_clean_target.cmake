file(REMOVE_RECURSE
  "libum_upnp.a"
)
