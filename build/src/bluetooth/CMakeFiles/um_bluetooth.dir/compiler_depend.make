# Empty compiler generated dependencies file for um_bluetooth.
# This may be replaced when dependencies are built.
