file(REMOVE_RECURSE
  "libum_bluetooth.a"
)
