file(REMOVE_RECURSE
  "CMakeFiles/um_bluetooth.dir/bip.cpp.o"
  "CMakeFiles/um_bluetooth.dir/bip.cpp.o.d"
  "CMakeFiles/um_bluetooth.dir/hidp.cpp.o"
  "CMakeFiles/um_bluetooth.dir/hidp.cpp.o.d"
  "CMakeFiles/um_bluetooth.dir/mapper.cpp.o"
  "CMakeFiles/um_bluetooth.dir/mapper.cpp.o.d"
  "CMakeFiles/um_bluetooth.dir/medium.cpp.o"
  "CMakeFiles/um_bluetooth.dir/medium.cpp.o.d"
  "CMakeFiles/um_bluetooth.dir/obex.cpp.o"
  "CMakeFiles/um_bluetooth.dir/obex.cpp.o.d"
  "CMakeFiles/um_bluetooth.dir/sdp.cpp.o"
  "CMakeFiles/um_bluetooth.dir/sdp.cpp.o.d"
  "CMakeFiles/um_bluetooth.dir/usdl_docs.cpp.o"
  "CMakeFiles/um_bluetooth.dir/usdl_docs.cpp.o.d"
  "libum_bluetooth.a"
  "libum_bluetooth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_bluetooth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
