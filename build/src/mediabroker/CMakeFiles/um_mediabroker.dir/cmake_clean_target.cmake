file(REMOVE_RECURSE
  "libum_mediabroker.a"
)
