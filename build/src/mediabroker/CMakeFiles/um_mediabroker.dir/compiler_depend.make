# Empty compiler generated dependencies file for um_mediabroker.
# This may be replaced when dependencies are built.
