file(REMOVE_RECURSE
  "CMakeFiles/um_mediabroker.dir/client.cpp.o"
  "CMakeFiles/um_mediabroker.dir/client.cpp.o.d"
  "CMakeFiles/um_mediabroker.dir/mapper.cpp.o"
  "CMakeFiles/um_mediabroker.dir/mapper.cpp.o.d"
  "CMakeFiles/um_mediabroker.dir/protocol.cpp.o"
  "CMakeFiles/um_mediabroker.dir/protocol.cpp.o.d"
  "CMakeFiles/um_mediabroker.dir/server.cpp.o"
  "CMakeFiles/um_mediabroker.dir/server.cpp.o.d"
  "libum_mediabroker.a"
  "libum_mediabroker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_mediabroker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
