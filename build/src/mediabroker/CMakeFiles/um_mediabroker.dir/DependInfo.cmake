
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mediabroker/client.cpp" "src/mediabroker/CMakeFiles/um_mediabroker.dir/client.cpp.o" "gcc" "src/mediabroker/CMakeFiles/um_mediabroker.dir/client.cpp.o.d"
  "/root/repo/src/mediabroker/mapper.cpp" "src/mediabroker/CMakeFiles/um_mediabroker.dir/mapper.cpp.o" "gcc" "src/mediabroker/CMakeFiles/um_mediabroker.dir/mapper.cpp.o.d"
  "/root/repo/src/mediabroker/protocol.cpp" "src/mediabroker/CMakeFiles/um_mediabroker.dir/protocol.cpp.o" "gcc" "src/mediabroker/CMakeFiles/um_mediabroker.dir/protocol.cpp.o.d"
  "/root/repo/src/mediabroker/server.cpp" "src/mediabroker/CMakeFiles/um_mediabroker.dir/server.cpp.o" "gcc" "src/mediabroker/CMakeFiles/um_mediabroker.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/um_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/um_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/um_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/um_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/um_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
