file(REMOVE_RECURSE
  "CMakeFiles/um_netsim.dir/network.cpp.o"
  "CMakeFiles/um_netsim.dir/network.cpp.o.d"
  "CMakeFiles/um_netsim.dir/stream.cpp.o"
  "CMakeFiles/um_netsim.dir/stream.cpp.o.d"
  "libum_netsim.a"
  "libum_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
