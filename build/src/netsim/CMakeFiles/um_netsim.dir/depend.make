# Empty dependencies file for um_netsim.
# This may be replaced when dependencies are built.
