file(REMOVE_RECURSE
  "libum_netsim.a"
)
