file(REMOVE_RECURSE
  "libum_xml.a"
)
