file(REMOVE_RECURSE
  "CMakeFiles/um_xml.dir/parser.cpp.o"
  "CMakeFiles/um_xml.dir/parser.cpp.o.d"
  "CMakeFiles/um_xml.dir/xml.cpp.o"
  "CMakeFiles/um_xml.dir/xml.cpp.o.d"
  "libum_xml.a"
  "libum_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
