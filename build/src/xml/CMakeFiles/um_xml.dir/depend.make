# Empty dependencies file for um_xml.
# This may be replaced when dependencies are built.
