file(REMOVE_RECURSE
  "libum_common.a"
)
