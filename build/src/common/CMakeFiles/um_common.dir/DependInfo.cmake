
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/base64.cpp" "src/common/CMakeFiles/um_common.dir/base64.cpp.o" "gcc" "src/common/CMakeFiles/um_common.dir/base64.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/common/CMakeFiles/um_common.dir/bytes.cpp.o" "gcc" "src/common/CMakeFiles/um_common.dir/bytes.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/common/CMakeFiles/um_common.dir/log.cpp.o" "gcc" "src/common/CMakeFiles/um_common.dir/log.cpp.o.d"
  "/root/repo/src/common/mime.cpp" "src/common/CMakeFiles/um_common.dir/mime.cpp.o" "gcc" "src/common/CMakeFiles/um_common.dir/mime.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/common/CMakeFiles/um_common.dir/strings.cpp.o" "gcc" "src/common/CMakeFiles/um_common.dir/strings.cpp.o.d"
  "/root/repo/src/common/uri.cpp" "src/common/CMakeFiles/um_common.dir/uri.cpp.o" "gcc" "src/common/CMakeFiles/um_common.dir/uri.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
