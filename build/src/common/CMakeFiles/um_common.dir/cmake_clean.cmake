file(REMOVE_RECURSE
  "CMakeFiles/um_common.dir/base64.cpp.o"
  "CMakeFiles/um_common.dir/base64.cpp.o.d"
  "CMakeFiles/um_common.dir/bytes.cpp.o"
  "CMakeFiles/um_common.dir/bytes.cpp.o.d"
  "CMakeFiles/um_common.dir/log.cpp.o"
  "CMakeFiles/um_common.dir/log.cpp.o.d"
  "CMakeFiles/um_common.dir/mime.cpp.o"
  "CMakeFiles/um_common.dir/mime.cpp.o.d"
  "CMakeFiles/um_common.dir/strings.cpp.o"
  "CMakeFiles/um_common.dir/strings.cpp.o.d"
  "CMakeFiles/um_common.dir/uri.cpp.o"
  "CMakeFiles/um_common.dir/uri.cpp.o.d"
  "libum_common.a"
  "libum_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/um_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
