# Empty compiler generated dependencies file for um_common.
# This may be replaced when dependencies are built.
