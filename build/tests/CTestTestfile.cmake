# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/shape_usdl_test[1]_include.cmake")
include("/root/repo/build/tests/core_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/upnp_test[1]_include.cmake")
include("/root/repo/build/tests/bluetooth_test[1]_include.cmake")
include("/root/repo/build/tests/platforms_test[1]_include.cmake")
include("/root/repo/build/tests/webservice_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/directory_ttl_test[1]_include.cmake")
