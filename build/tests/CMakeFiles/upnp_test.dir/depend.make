# Empty dependencies file for upnp_test.
# This may be replaced when dependencies are built.
