file(REMOVE_RECURSE
  "CMakeFiles/upnp_test.dir/upnp_test.cpp.o"
  "CMakeFiles/upnp_test.dir/upnp_test.cpp.o.d"
  "upnp_test"
  "upnp_test.pdb"
  "upnp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upnp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
