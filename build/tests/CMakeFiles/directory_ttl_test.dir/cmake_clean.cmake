file(REMOVE_RECURSE
  "CMakeFiles/directory_ttl_test.dir/directory_ttl_test.cpp.o"
  "CMakeFiles/directory_ttl_test.dir/directory_ttl_test.cpp.o.d"
  "directory_ttl_test"
  "directory_ttl_test.pdb"
  "directory_ttl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_ttl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
