file(REMOVE_RECURSE
  "CMakeFiles/webservice_test.dir/webservice_test.cpp.o"
  "CMakeFiles/webservice_test.dir/webservice_test.cpp.o.d"
  "webservice_test"
  "webservice_test.pdb"
  "webservice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webservice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
