# Empty compiler generated dependencies file for webservice_test.
# This may be replaced when dependencies are built.
