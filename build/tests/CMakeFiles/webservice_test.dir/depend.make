# Empty dependencies file for webservice_test.
# This may be replaced when dependencies are built.
