# Empty dependencies file for shape_usdl_test.
# This may be replaced when dependencies are built.
