file(REMOVE_RECURSE
  "CMakeFiles/shape_usdl_test.dir/shape_usdl_test.cpp.o"
  "CMakeFiles/shape_usdl_test.dir/shape_usdl_test.cpp.o.d"
  "shape_usdl_test"
  "shape_usdl_test.pdb"
  "shape_usdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_usdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
