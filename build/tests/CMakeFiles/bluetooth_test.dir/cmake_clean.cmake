file(REMOVE_RECURSE
  "CMakeFiles/bluetooth_test.dir/bluetooth_test.cpp.o"
  "CMakeFiles/bluetooth_test.dir/bluetooth_test.cpp.o.d"
  "bluetooth_test"
  "bluetooth_test.pdb"
  "bluetooth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bluetooth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
