file(REMOVE_RECURSE
  "CMakeFiles/bench_transport_bridging.dir/bench_transport_bridging.cpp.o"
  "CMakeFiles/bench_transport_bridging.dir/bench_transport_bridging.cpp.o.d"
  "bench_transport_bridging"
  "bench_transport_bridging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transport_bridging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
