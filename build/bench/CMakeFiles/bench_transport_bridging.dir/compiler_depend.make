# Empty compiler generated dependencies file for bench_transport_bridging.
# This may be replaced when dependencies are built.
