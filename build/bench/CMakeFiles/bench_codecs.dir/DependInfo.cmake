
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_codecs.cpp" "bench/CMakeFiles/bench_codecs.dir/bench_codecs.cpp.o" "gcc" "bench/CMakeFiles/bench_codecs.dir/bench_codecs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/um_core.dir/DependInfo.cmake"
  "/root/repo/build/src/upnp/CMakeFiles/um_upnp.dir/DependInfo.cmake"
  "/root/repo/build/src/bluetooth/CMakeFiles/um_bluetooth.dir/DependInfo.cmake"
  "/root/repo/build/src/rmi/CMakeFiles/um_rmi.dir/DependInfo.cmake"
  "/root/repo/build/src/mediabroker/CMakeFiles/um_mediabroker.dir/DependInfo.cmake"
  "/root/repo/build/src/motes/CMakeFiles/um_motes.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/um_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/um_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/um_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/um_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
