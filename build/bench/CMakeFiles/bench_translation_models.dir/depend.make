# Empty dependencies file for bench_translation_models.
# This may be replaced when dependencies are built.
