file(REMOVE_RECURSE
  "CMakeFiles/bench_translation_models.dir/bench_translation_models.cpp.o"
  "CMakeFiles/bench_translation_models.dir/bench_translation_models.cpp.o.d"
  "bench_translation_models"
  "bench_translation_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_translation_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
