# Empty compiler generated dependencies file for bench_service_bridging.
# This may be replaced when dependencies are built.
