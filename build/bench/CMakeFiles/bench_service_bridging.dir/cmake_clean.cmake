file(REMOVE_RECURSE
  "CMakeFiles/bench_service_bridging.dir/bench_service_bridging.cpp.o"
  "CMakeFiles/bench_service_bridging.dir/bench_service_bridging.cpp.o.d"
  "bench_service_bridging"
  "bench_service_bridging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service_bridging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
