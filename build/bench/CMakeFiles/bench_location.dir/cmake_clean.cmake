file(REMOVE_RECURSE
  "CMakeFiles/bench_location.dir/bench_location.cpp.o"
  "CMakeFiles/bench_location.dir/bench_location.cpp.o.d"
  "bench_location"
  "bench_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
