# Empty dependencies file for bench_device_bridging.
# This may be replaced when dependencies are built.
