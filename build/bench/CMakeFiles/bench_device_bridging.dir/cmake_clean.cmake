file(REMOVE_RECURSE
  "CMakeFiles/bench_device_bridging.dir/bench_device_bridging.cpp.o"
  "CMakeFiles/bench_device_bridging.dir/bench_device_bridging.cpp.o.d"
  "bench_device_bridging"
  "bench_device_bridging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_bridging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
