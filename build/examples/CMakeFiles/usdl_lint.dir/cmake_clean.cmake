file(REMOVE_RECURSE
  "CMakeFiles/usdl_lint.dir/usdl_lint.cpp.o"
  "CMakeFiles/usdl_lint.dir/usdl_lint.cpp.o.d"
  "usdl_lint"
  "usdl_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usdl_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
