# Empty dependencies file for usdl_lint.
# This may be replaced when dependencies are built.
