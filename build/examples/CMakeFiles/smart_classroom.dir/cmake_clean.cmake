file(REMOVE_RECURSE
  "CMakeFiles/smart_classroom.dir/smart_classroom.cpp.o"
  "CMakeFiles/smart_classroom.dir/smart_classroom.cpp.o.d"
  "smart_classroom"
  "smart_classroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_classroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
