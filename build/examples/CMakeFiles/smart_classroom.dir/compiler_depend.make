# Empty compiler generated dependencies file for smart_classroom.
# This may be replaced when dependencies are built.
