file(REMOVE_RECURSE
  "CMakeFiles/camera_to_tv.dir/camera_to_tv.cpp.o"
  "CMakeFiles/camera_to_tv.dir/camera_to_tv.cpp.o.d"
  "camera_to_tv"
  "camera_to_tv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_to_tv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
