# Empty dependencies file for camera_to_tv.
# This may be replaced when dependencies are built.
