file(REMOVE_RECURSE
  "CMakeFiles/pads_demo.dir/pads_demo.cpp.o"
  "CMakeFiles/pads_demo.dir/pads_demo.cpp.o.d"
  "pads_demo"
  "pads_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pads_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
