# Empty dependencies file for pads_demo.
# This may be replaced when dependencies are built.
