file(REMOVE_RECURSE
  "CMakeFiles/g2ui_atlas.dir/g2ui_atlas.cpp.o"
  "CMakeFiles/g2ui_atlas.dir/g2ui_atlas.cpp.o.d"
  "g2ui_atlas"
  "g2ui_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g2ui_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
