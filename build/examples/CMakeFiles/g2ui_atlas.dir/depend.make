# Empty dependencies file for g2ui_atlas.
# This may be replaced when dependencies are built.
