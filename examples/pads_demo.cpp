// uMiddle Pads (paper §4.1, Figure 8): cross-platform "virtual cabling".
//
// This demo populates one smart space with devices from five platforms plus a
// set of native uMiddle services (the paper's board shows twenty-two icons —
// one Bluetooth, three UPnP, eighteen native), renders the board, then draws
// wires: a mouse drives an event logger, a mote feeds a data store, the clock
// publishes its time, and the camera fans out to every image sink in the room.
#include <iostream>

#include "apps/pads.hpp"
#include "bluetooth/bip.hpp"
#include "bluetooth/hidp.hpp"
#include "bluetooth/mapper.hpp"
#include "common/log.hpp"
#include "obs/export.hpp"
#include "core/umiddle.hpp"
#include "motes/mapper.hpp"
#include "upnp/devices.hpp"
#include "upnp/mapper.hpp"

using namespace umiddle;

namespace {

/// A native uMiddle sink that counts what it swallows.
std::unique_ptr<core::CollectorDevice> make_sink(const std::string& name, const char* mime) {
  return std::make_unique<core::CollectorDevice>(name,
                                                 core::make_sink_shape("in", MimeType::of(mime)));
}

}  // namespace

int main() {
  umiddle::log::enable_stderr(umiddle::log::Level::warn);

  sim::Scheduler sched;
  net::Network net(sched);
  net::SegmentId lan = net.add_segment(net::SegmentSpec{});
  for (const char* host : {"pad-node", "light-host", "clock-host", "tv-host"}) {
    if (!net.add_host(host).ok() || !net.attach(host, lan).ok()) return 1;
  }

  // Native platform devices.
  upnp::BinaryLight light(net, "light-host", 8000, "Ceiling light");
  upnp::ClockDevice clock(net, "clock-host", 8000, "Wall clock");
  upnp::MediaRendererTv tv(net, "tv-host", 8000, "Projector");
  bt::BluetoothMedium piconet(net);
  bt::BipCamera camera(piconet, "BIP camera");
  bt::HidMouse mouse(piconet, "HIDP mouse");
  motes::MoteField field(net, 0.0);
  motes::Mote mote(field, 11, motes::SensorKind::temperature, sim::milliseconds(750));
  if (!light.start().ok() || !clock.start().ok() || !tv.start().ok() ||
      !camera.power_on().ok() || !mouse.power_on().ok() || !mote.start().ok()) {
    return 1;
  }

  // One runtime hosting mappers for three platforms.
  core::UsdlLibrary library;
  upnp::register_upnp_usdl(library);
  bt::register_bt_usdl(library);
  motes::register_motes_usdl(library);
  core::Runtime runtime(sched, net, "pad-node");
  runtime.add_mapper(std::make_unique<upnp::UpnpMapper>(library));
  runtime.add_mapper(std::make_unique<bt::BtMapper>(piconet, library));
  runtime.add_mapper(std::make_unique<motes::MoteMapper>(field, library));
  if (!runtime.start().ok()) return 1;

  // Native uMiddle services on the board.
  auto event_log = make_sink("Event logger", "application/vml+xml");
  auto data_store = make_sink("Data store", "application/x-sensor+xml");
  auto photo_album = make_sink("Photo album", "image/jpeg");
  auto time_display = make_sink("Time display", "text/plain");
  core::CollectorDevice* event_log_raw = event_log.get();
  core::CollectorDevice* data_store_raw = data_store.get();
  core::CollectorDevice* photo_album_raw = photo_album.get();
  core::CollectorDevice* time_display_raw = time_display.get();
  (void)runtime.map(std::move(event_log));
  (void)runtime.map(std::move(data_store));
  (void)runtime.map(std::move(photo_album));
  (void)runtime.map(std::move(time_display));
  auto trigger = std::make_unique<core::LambdaDevice>(
      "Trigger", core::make_source_shape("fire", MimeType::of("application/x-upnp-control")));
  core::LambdaDevice* trigger_raw = trigger.get();
  (void)runtime.map(std::move(trigger));

  sched.run_for(sim::seconds(5));  // discovery across all platforms

  apps::Pads pads(runtime);
  std::cout << pads.render() << "\n";

  // Draw wires.
  struct WireSpec {
    const char *src, *src_port, *dst, *dst_port;
  };
  for (const WireSpec& w : std::initializer_list<WireSpec>{
           {"HIDP mouse", "pointer-out", "Event logger", "in"},
           {"Mote 11 (temperature)", "reading-out", "Data store", "in"},
           {"Wall clock", "time-out", "Time display", "in"},
           {"Trigger", "fire", "Wall clock", "get-time"},
       }) {
    auto r = pads.wire(w.src, w.src_port, w.dst, w.dst_port);
    if (!r.ok()) {
      std::cerr << "wire failed (" << w.src << " -> " << w.dst
                << "): " << r.error().to_string() << "\n";
      return 1;
    }
  }
  // And one dynamic wire: the camera to every image sink (album AND projector).
  auto fanout = pads.wire_to_query("BIP camera", "image-out",
                                   core::Query().digital_input(MimeType::of("image/*")));
  if (!fanout.ok()) return 1;

  // Run the space.
  mouse.click();
  mouse.move(5, -3);
  core::Message fire;
  fire.type = MimeType::of("application/x-upnp-control");
  (void)trigger_raw->emit("fire", fire);
  camera.shutter(Bytes(25000, 0xD8), "board.jpg");
  sched.run_for(sim::seconds(5));

  std::cout << pads.render() << "\n";
  std::cout << "Event logger received " << event_log_raw->count() << " VML events\n";
  std::cout << "Data store received " << data_store_raw->count() << " readings\n";
  std::cout << "Time display shows: "
            << (time_display_raw->count() > 0
                    ? time_display_raw->received().back().msg.body_text()
                    : std::string("<nothing>"))
            << "\n";
  std::cout << "Photo album has " << photo_album_raw->count() << " photo(s); projector "
            << "rendered " << tv.rendered().size() << "\n";

  bool ok = event_log_raw->count() >= 3 && data_store_raw->count() >= 2 &&
            time_display_raw->count() >= 1 && photo_album_raw->count() == 1 &&
            tv.rendered().size() == 1;
  // End-of-run telemetry: the world's metrics registry as a text snapshot.
  std::cout << "\n--- metrics ---\n" << obs::to_text(net.metrics().snapshot());
  std::cout << (ok ? "PADS DEMO OK" : "PADS DEMO INCOMPLETE") << "\n";
  return ok ? 0 : 1;
}
