// Quickstart: bridge a native UPnP light into uMiddle and control it from a
// platform-independent application.
//
// What this shows, end to end:
//   1. build a simulated world (scheduler + network + a UPnP light device);
//   2. start a uMiddle runtime with the UPnP mapper — the light is discovered
//      over SSDP, its description fetched over HTTP, and a translator is
//      instantiated from the built-in USDL document (paper §3.4: two digital
//      input ports, "power-on" passing 1 and "power-off" passing 0);
//   3. the application finds the light by *shape*, not by UPnP device type
//      (service shaping, §3.3), wires a native uMiddle "wall switch" to it
//      (dynamic device binding, §3.5), and flips it.
#include <iostream>

#include "common/log.hpp"
#include "core/umiddle.hpp"
#include "upnp/devices.hpp"
#include "upnp/mapper.hpp"

using namespace umiddle;

int main() {
  umiddle::log::enable_stderr(umiddle::log::Level::warn);

  // --- 1. the world -----------------------------------------------------------
  sim::Scheduler sched;
  net::Network net(sched);
  net::SegmentSpec lan_spec;
  lan_spec.name = "office-lan";
  net::SegmentId lan = net.add_segment(lan_spec);
  for (const char* host : {"umiddle-node", "light-host"}) {
    if (!net.add_host(host).ok() || !net.attach(host, lan).ok()) return 1;
  }

  upnp::BinaryLight light(net, "light-host", 8000, "Desk light");
  if (auto r = light.start(); !r.ok()) {
    std::cerr << "light failed to start: " << r.error().to_string() << "\n";
    return 1;
  }

  // --- 2. the uMiddle runtime with a UPnP mapper --------------------------------
  core::UsdlLibrary library;
  upnp::register_upnp_usdl(library);
  core::Runtime runtime(sched, net, "umiddle-node");
  runtime.add_mapper(std::make_unique<upnp::UpnpMapper>(library));
  if (auto r = runtime.start(); !r.ok()) {
    std::cerr << "runtime failed to start: " << r.error().to_string() << "\n";
    return 1;
  }

  // Let discovery + translator instantiation run (virtual time).
  sched.run_for(sim::seconds(3));

  // --- 3. a platform-independent application -------------------------------------
  // Find "something that makes light" — no UPnP knowledge involved.
  auto lights = runtime.directory().lookup(
      core::Query().physical_output(MimeType::of("visible/light")));
  std::cout << "Found " << lights.size() << " light-shaped device(s)\n";
  if (lights.empty()) return 1;
  const core::TranslatorProfile& bulb = lights.front();
  std::cout << "  " << bulb.name << " (platform: " << bulb.platform << ", "
            << bulb.shape.size() << " ports)\n";

  // A native uMiddle wall switch with one control output.
  auto wall_switch = std::make_unique<core::LambdaDevice>(
      "Wall switch",
      core::make_source_shape("press", MimeType::of("application/x-upnp-control")));
  core::LambdaDevice* switch_raw = wall_switch.get();
  auto switch_id = runtime.map(std::move(wall_switch)).take();

  // Wire the switch to the light's power-on and flip it.
  auto on_path = runtime.transport().connect(core::PortRef{switch_id, "press"},
                                             core::PortRef{bulb.id, "power-on"});
  if (!on_path.ok()) {
    std::cerr << "connect failed: " << on_path.error().to_string() << "\n";
    return 1;
  }
  std::cout << "Wired switch.press -> " << bulb.name << ".power-on\n";

  core::Message press;
  press.type = MimeType::of("application/x-upnp-control");
  (void)switch_raw->emit("press", press);
  sched.run_for(sim::seconds(1));
  std::cout << "After press: light is " << (light.is_on() ? "ON" : "off") << "\n";

  // Re-wire to power-off and press again.
  (void)runtime.transport().disconnect(on_path.value());
  auto off_path = runtime.transport().connect(core::PortRef{switch_id, "press"},
                                              core::PortRef{bulb.id, "power-off"});
  if (!off_path.ok()) return 1;
  (void)switch_raw->emit("press", press);
  sched.run_for(sim::seconds(1));
  std::cout << "After re-wire + press: light is " << (light.is_on() ? "ON" : "off") << "\n";

  std::cout << "Native SOAP actions handled by the light: " << light.actions_handled()
            << "\n";
  return light.is_on() ? 1 : 0;
}
