// The paper's flagship scenario (Fig. 5): a Bluetooth BIP digital camera on
// one uMiddle node bridged to a UPnP MediaRenderer TV on another.
//
// Topology:
//   H1 "living-room"  — Bluetooth mapper; the camera lives on the piconet
//   H2 "media-cabinet" — UPnP mapper; the TV lives on the Ethernet LAN
//   H1 and H2 share the LAN and form one intermediary semantic space
//   (directory advertisements + UMTP message paths).
//
// The application runs against H1 and connects the camera's image output to
// *every* image renderer via a dynamic query path; pressing the camera's
// shutter pushes the photo over OBEX into its translator, across UMTP to H2,
// and out through SOAP onto the TV.
#include <fstream>
#include <iostream>
#include <string_view>

#include "bluetooth/bip.hpp"
#include "bluetooth/mapper.hpp"
#include "common/log.hpp"
#include "core/umiddle.hpp"
#include "obs/export.hpp"
#include "upnp/devices.hpp"
#include "upnp/mapper.hpp"

using namespace umiddle;

int main(int argc, char** argv) {
  umiddle::log::enable_stderr(umiddle::log::Level::warn);

  // --trace-out=PATH   Chrome trace_event JSON (open in chrome://tracing or
  //                    https://ui.perfetto.dev) of every message-path span.
  // --metrics-out=PATH world metrics + span aggregates as JSON.
  std::string trace_out, metrics_out;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--trace-out=", 0) == 0) trace_out = arg.substr(12);
    if (arg.rfind("--metrics-out=", 0) == 0) metrics_out = arg.substr(14);
  }

  sim::Scheduler sched;
  net::Network net(sched);
  net::SegmentSpec lan_spec;
  lan_spec.name = "house-lan";
  net::SegmentId lan = net.add_segment(lan_spec);
  for (const char* host : {"living-room", "media-cabinet", "tv-host"}) {
    if (!net.add_host(host).ok() || !net.attach(host, lan).ok()) return 1;
  }

  // Native devices on their native transports.
  bt::BluetoothMedium piconet(net);
  bt::BipCamera camera(piconet, "Holiday camera");
  if (!camera.power_on().ok()) return 1;

  upnp::MediaRendererTv tv(net, "tv-host", 8000, "Living-room TV");
  if (!tv.start().ok()) return 1;

  // Two uMiddle runtimes, one mapper each — different rooms, one semantic space.
  core::UsdlLibrary library;
  bt::register_bt_usdl(library);
  upnp::register_upnp_usdl(library);

  core::Runtime h1(sched, net, "living-room");
  h1.add_mapper(std::make_unique<bt::BtMapper>(piconet, library));
  core::Runtime h2(sched, net, "media-cabinet");
  h2.add_mapper(std::make_unique<upnp::UpnpMapper>(library));
  if (!h1.start().ok() || !h2.start().ok()) return 1;

  sched.run_for(sim::seconds(4));  // discovery on both platforms + adverts

  std::cout << "H1 sees " << h1.directory().known_translators()
            << " translators; H2 sees " << h2.directory().known_translators() << "\n";

  auto cameras =
      h1.directory().lookup(core::Query().digital_output(MimeType::of("image/*")));
  auto renderers = h1.directory().lookup(core::Query()
                                             .digital_input(MimeType::of("image/*"))
                                             .physical_output(MimeType::of("visible/*")));
  if (cameras.empty() || renderers.empty()) {
    std::cerr << "discovery incomplete: " << cameras.size() << " cameras, "
              << renderers.size() << " renderers\n";
    return 1;
  }
  std::cout << "Camera: " << cameras[0].name << " (node " << cameras[0].node.to_string()
            << ", " << cameras[0].platform << ")\n";
  std::cout << "Renderer: " << renderers[0].name << " (node "
            << renderers[0].node.to_string() << ", " << renderers[0].platform << ")\n";

  // Dynamic message path: camera images to every current & future image sink.
  auto path = h1.transport().connect(
      core::PortRef{cameras[0].id, "image-out"},
      core::Query().digital_input(MimeType::of("image/*")).platform("upnp"));
  if (!path.ok()) {
    std::cerr << "connect failed: " << path.error().to_string() << "\n";
    return 1;
  }

  // Click: three photos of increasing size.
  for (int i = 1; i <= 3; ++i) {
    camera.shutter(Bytes(static_cast<std::size_t>(i) * 30000, 0xD8),
                   "holiday-" + std::to_string(i) + ".jpg");
    sched.run_for(sim::seconds(3));  // OBEX push + UMTP + SOAP render
  }

  std::cout << "TV rendered " << tv.rendered().size() << " image(s):\n";
  for (const auto& r : tv.rendered()) {
    std::cout << "  " << r.name << " (" << r.bytes << " bytes)\n";
  }
  const core::PathStats* stats = h1.transport().stats(path.value());
  if (stats != nullptr) {
    std::cout << "Path forwarded " << stats->messages_forwarded << " messages, "
              << stats->bytes_forwarded << " bytes\n";
  }

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    out << obs::chrome_trace_json(net.tracer()) << "\n";
    std::cout << "Wrote Chrome trace (" << net.tracer().spans().size() << " spans) to "
              << trace_out << "\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    out << obs::world_json(net.metrics(), net.tracer()) << "\n";
    std::cout << "Wrote metrics snapshot to " << metrics_out << "\n";
  }
  return tv.rendered().size() == 3 ? 0 : 1;
}
