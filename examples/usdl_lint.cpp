// usdl_lint: validate a USDL document and describe the translators it would
// generate — the developer-facing side of §3.4 ("USDL documents describe how
// mappers configure translators for specific devices given a generic
// translator implementation").
//
// Usage:
//   usdl_lint <file.usdl>     validate a document from disk
//   usdl_lint --builtin       lint and describe every built-in document
#include <fstream>
#include <iostream>
#include <sstream>

#include "bluetooth/mapper.hpp"
#include "core/umiddle.hpp"
#include "mediabroker/mapper.hpp"
#include "motes/mapper.hpp"
#include "rmi/mapper.hpp"
#include "upnp/mapper.hpp"
#include "webservice/mapper.hpp"

using namespace umiddle;

namespace {

void describe(const core::UsdlService& service) {
  std::cout << "service \"" << service.name << "\"\n";
  std::cout << "  platform:  " << service.platform << "\n";
  std::cout << "  match key: " << service.match << "\n";
  if (service.hierarchy_entities > 0) {
    std::cout << "  hierarchy entities: " << service.hierarchy_entities << "\n";
  }
  core::CostModel costs;
  std::cout << "  instantiation cost: "
            << sim::to_millis(costs.instantiation_cost(service.shape.size(),
                                                       service.hierarchy_entities))
            << " ms (" << service.shape.size() << " ports)\n";
  std::cout << "  shape:\n";
  for (const core::PortSpec& port : service.shape.ports()) {
    std::cout << "    " << (port.direction == core::Direction::input ? " in" : "out") << " "
              << (port.kind == core::PortKind::digital ? "digital " : "physical") << " "
              << port.name << " : " << port.type.to_string();
    if (!port.description.empty()) std::cout << "  — " << port.description;
    std::cout << "\n";
  }
  if (!service.bindings.empty()) {
    std::cout << "  bindings:\n";
    for (const core::UsdlBinding& b : service.bindings) {
      std::cout << "    " << b.port << " [" << b.kind << "]";
      if (!b.emit_port.empty()) std::cout << " -> emit " << b.emit_port;
      for (const auto& [k, v] : b.native.attrs) std::cout << " " << k << "=" << v;
      std::cout << "\n";
    }
  }
  std::cout << "\n";
}

int lint_text(const std::string& label, const std::string& text) {
  auto doc = core::parse_usdl(text);
  if (!doc.ok()) {
    std::cout << label << ": INVALID — " << doc.error().to_string() << "\n";
    return 1;
  }
  std::cout << label << ": OK (" << doc.value().services.size() << " service(s))\n";
  for (const core::UsdlService& s : doc.value().services) describe(s);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--builtin") {
    core::UsdlLibrary library;
    upnp::register_upnp_usdl(library);
    bt::register_bt_usdl(library);
    rmi::register_rmi_usdl(library);
    mb::register_mb_usdl(library);
    motes::register_motes_usdl(library);
    ws::register_ws_usdl(library);
    std::cout << "built-in USDL library: " << library.size() << " services\n\n";
    for (const char* platform : {"upnp", "bluetooth", "rmi", "mb", "motes", "ws"}) {
      for (const core::UsdlService* s : library.services_for(platform)) describe(*s);
    }
    return 0;
  }
  if (argc != 2) {
    std::cerr << "usage: usdl_lint <file.usdl> | --builtin\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return lint_text(argv[1], text.str());
}
