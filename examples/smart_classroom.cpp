// Smart classroom: the "moderate device mobility ... in environments such as a
// classroom" setting the paper's §5.1 reasons about, exercised across five
// platforms in one semantic space.
//
// Scenario (a lecture morning):
//   1. The room's infrastructure node bridges a UPnP projector + air
//      conditioner + clock, temperature motes, a weather web service, and an
//      RMI-based attendance service.
//   2. Lecture prep: the aircon is set to Cool, the projector shows the
//      weather report, the clock's alarm marks the lecture start.
//   3. During the lecture, the instructor's Bluetooth camera appears
//      (mobility!), is bridged in ~0.2 s, and whiteboard snapshots flow to the
//      projector; mote temperature readings stream to the attendance service's
//      log through a shaped (QoS) path.
//   4. The camera leaves the room — its translator is withdrawn and the paths
//      unbind, with nothing else disturbed.
#include <iostream>

#include "bluetooth/bip.hpp"
#include "bluetooth/mapper.hpp"
#include "common/log.hpp"
#include "obs/export.hpp"
#include "core/umiddle.hpp"
#include "motes/mapper.hpp"
#include "rmi/mapper.hpp"
#include "upnp/devices.hpp"
#include "upnp/mapper.hpp"
#include "webservice/mapper.hpp"

using namespace umiddle;

namespace {

core::TranslatorProfile find_one(core::Runtime& runtime, const core::Query& query) {
  auto hits = runtime.directory().lookup(query);
  return hits.empty() ? core::TranslatorProfile{} : hits.front();
}

}  // namespace

int main() {
  umiddle::log::enable_stderr(umiddle::log::Level::warn);

  sim::Scheduler sched;
  net::Network net(sched);
  net::SegmentId lan = net.add_segment(net::SegmentSpec{});
  for (const char* h :
       {"room-node", "projector-host", "ac-host", "clock-host", "ws-host", "rmi-host"}) {
    if (!net.add_host(h).ok() || !net.attach(h, lan).ok()) return 1;
  }

  // --- native devices and services -------------------------------------------------
  upnp::MediaRendererTv projector(net, "projector-host", 8000, "Projector");
  upnp::AirConditioner aircon(net, "ac-host", 8000, "Room AC");
  upnp::ClockDevice clock(net, "clock-host", 8000, "Lecture clock");
  motes::MoteField field(net, 0.01);
  motes::Mote mote_front(field, 21, motes::SensorKind::temperature, sim::seconds(2));
  motes::Mote mote_back(field, 22, motes::SensorKind::temperature, sim::seconds(2));
  ws::WsRegistry ws_registry(net, "ws-host");
  ws::WsService weather(net, "ws-host", 8080, "campus-weather", "weather");
  weather.export_method("getReport", [](const Bytes& p) -> Result<Bytes> {
    return to_bytes("weather@" + umiddle::to_string(p) + ": overcast, 19C");
  });
  rmi::RmiRegistry rmi_registry(net, "rmi-host");
  rmi::RmiEchoService attendance(net, "rmi-host", 2001, "attendance", rmi_registry.endpoint());
  bt::BluetoothMedium piconet(net);
  bt::BipCamera camera(piconet, "Instructor camera");

  if (!projector.start().ok() || !aircon.start().ok() || !clock.start().ok() ||
      !mote_front.start().ok() || !mote_back.start().ok() || !ws_registry.start().ok() ||
      !weather.start().ok() || !rmi_registry.start().ok() || !attendance.start().ok()) {
    return 1;
  }
  ws::ws_register(net, "ws-host", ws_registry.listing_url(),
                  ws::WsEntry{"campus-weather", "weather", weather.endpoint_url()},
                  [](Result<void>) {});

  // --- the room's uMiddle node with five mappers ---------------------------------
  core::UsdlLibrary library;
  upnp::register_upnp_usdl(library);
  bt::register_bt_usdl(library);
  motes::register_motes_usdl(library);
  ws::register_ws_usdl(library);
  rmi::register_rmi_usdl(library);

  core::Runtime room(sched, net, "room-node");
  room.add_mapper(std::make_unique<upnp::UpnpMapper>(library));
  room.add_mapper(std::make_unique<bt::BtMapper>(piconet, library));
  room.add_mapper(std::make_unique<motes::MoteMapper>(field, library));
  room.add_mapper(std::make_unique<ws::WsMapper>(ws_registry.listing_url(), library));
  room.add_mapper(std::make_unique<rmi::RmiMapper>(rmi_registry.endpoint(), library));
  if (!room.start().ok()) return 1;
  sched.run_for(sim::seconds(8));

  std::cout << "Semantic space holds " << room.directory().known_translators()
            << " translators across 5 platforms\n";

  // --- lecture prep --------------------------------------------------------------
  auto remote = std::make_unique<core::LambdaDevice>(
      "Lecture console",
      core::Shape{{
          core::PortSpec{"text", core::PortKind::digital, core::Direction::output,
                         MimeType::of("text/plain"), ""},
          core::PortSpec{"trigger", core::PortKind::digital, core::Direction::output,
                         MimeType::of("application/x-upnp-control"), ""},
      }});
  core::LambdaDevice* console = remote.get();
  auto console_id = room.map(std::move(remote)).take();

  auto ac = find_one(room, core::Query().platform("upnp").name_contains("AC"));
  auto ws_svc = find_one(room, core::Query().platform("ws"));
  auto clk = find_one(room, core::Query().platform("upnp").name_contains("clock"));
  auto att = find_one(room, core::Query().platform("rmi"));
  if (!ac.id.valid() || !ws_svc.id.valid() || !clk.id.valid() || !att.id.valid()) {
    std::cerr << "discovery incomplete\n";
    return 1;
  }

  // Cool the room.
  auto mode_path = room.transport().connect(core::PortRef{console_id, "text"},
                                            core::PortRef{ac.id, "mode-in"});
  if (!mode_path.ok()) return 1;
  (void)console->emit("text", core::Message::text(MimeType::of("text/plain"), "Cool"));
  sched.run_for(sim::seconds(1));
  (void)room.transport().disconnect(mode_path.value());
  std::cout << "AC mode: " << aircon.mode() << "\n";

  // Ask the weather service for a report and display it on a log device.
  auto board = std::make_unique<core::CollectorDevice>(
      "Door display", core::make_sink_shape("in", MimeType::of("text/plain")));
  core::CollectorDevice* board_raw = board.get();
  auto board_id = room.map(std::move(board)).take();
  (void)room.transport().connect(core::PortRef{ws_svc.id, "report-out"},
                                 core::PortRef{board_id, "in"});
  auto ask_path = room.transport().connect(core::PortRef{console_id, "text"},
                                           core::PortRef{ws_svc.id, "query"});
  if (!ask_path.ok()) return 1;
  (void)console->emit("text", core::Message::text(MimeType::of("text/plain"), "campus"));
  sched.run_for(sim::seconds(1));
  (void)room.transport().disconnect(ask_path.value());
  std::cout << "Door display: "
            << (board_raw->count() > 0 ? board_raw->received().back().msg.body_text()
                                       : std::string("<empty>"))
            << "\n";

  // Stream mote telemetry to the attendance service's log, rate-shaped.
  core::QosPolicy gentle;
  gentle.rate_bytes_per_sec = 2000;
  gentle.max_buffered_bytes = 16 * 1024;
  for (const auto& mote : room.directory().lookup(core::Query().platform("motes"))) {
    (void)room.transport().connect(core::PortRef{mote.id, "reading-out"},
                                   core::PortRef{att.id, "data-in"}, gentle);
  }

  // --- the instructor arrives ------------------------------------------------------
  if (!camera.power_on().ok()) return 1;
  sched.run_for(sim::seconds(2));
  auto cam = find_one(room, core::Query().platform("bluetooth"));
  if (!cam.id.valid()) {
    std::cerr << "camera was not bridged\n";
    return 1;
  }
  std::cout << "Camera bridged: " << cam.name << "\n";
  auto snap_path = room.transport().connect(
      core::PortRef{cam.id, "image-out"},
      core::Query().digital_input(MimeType::of("image/*")).platform("upnp"));
  if (!snap_path.ok()) return 1;
  camera.shutter(Bytes(45000, 0xD8), "whiteboard-1.jpg");
  sched.run_for(sim::seconds(3));
  camera.shutter(Bytes(52000, 0xD8), "whiteboard-2.jpg");
  sched.run_for(sim::seconds(8));
  std::cout << "Projector showed " << projector.rendered().size() << " snapshot(s)\n";
  std::cout << "Attendance log received " << attendance.received()
            << " telemetry message(s)\n";

  // --- the instructor leaves --------------------------------------------------------
  camera.power_off();
  sched.run_for(sim::seconds(2));
  std::size_t after = room.directory().lookup(core::Query().platform("bluetooth")).size();
  std::cout << "Camera gone; bluetooth translators left: " << after << "\n";
  sched.run_for(sim::seconds(4));

  bool ok = aircon.mode() == "Cool" && board_raw->count() >= 1 &&
            projector.rendered().size() == 2 && attendance.received() >= 3 && after == 0;
  // End-of-run telemetry: the world's metrics registry as a text snapshot.
  std::cout << "\n--- metrics ---\n" << obs::to_text(net.metrics().snapshot());
  std::cout << (ok ? "SMART CLASSROOM OK" : "SMART CLASSROOM INCOMPLETE") << "\n";
  return ok ? 0 : 1;
}
