// G2 UI Atlas (paper §4.2, Figure 9): geographic co-location drives media flow.
//
// Gadgets are placed on a floor plan. Dragging the Bluetooth camera next to
// the UPnP TV starts a *geoplay* session (camera images render on the TV);
// dragging it next to the storage gadget instead starts a *geostore* session
// (images are archived). Moving a gadget away ends its sessions.
#include <iostream>

#include "apps/g2ui.hpp"
#include "bluetooth/bip.hpp"
#include "bluetooth/mapper.hpp"
#include "common/log.hpp"
#include "core/umiddle.hpp"
#include "upnp/devices.hpp"
#include "upnp/mapper.hpp"

using namespace umiddle;

int main() {
  umiddle::log::enable_stderr(umiddle::log::Level::warn);

  sim::Scheduler sched;
  net::Network net(sched);
  net::SegmentId lan = net.add_segment(net::SegmentSpec{});
  for (const char* host : {"atlas-node", "tv-host"}) {
    if (!net.add_host(host).ok() || !net.attach(host, lan).ok()) return 1;
  }

  bt::BluetoothMedium piconet(net);
  bt::BipCamera camera(piconet, "Pocket camera");
  upnp::MediaRendererTv tv(net, "tv-host", 8000, "Kitchen TV");
  if (!camera.power_on().ok() || !tv.start().ok()) return 1;

  core::UsdlLibrary library;
  bt::register_bt_usdl(library);
  upnp::register_upnp_usdl(library);
  core::Runtime runtime(sched, net, "atlas-node");
  runtime.add_mapper(std::make_unique<bt::BtMapper>(piconet, library));
  runtime.add_mapper(std::make_unique<upnp::UpnpMapper>(library));
  if (!runtime.start().ok()) return 1;

  // A native storage gadget (geostore target).
  auto storage = std::make_unique<core::CollectorDevice>(
      "Media storage", core::make_sink_shape("archive-in", MimeType::of("image/*")));
  core::CollectorDevice* storage_raw = storage.get();
  auto storage_id = runtime.map(std::move(storage)).take();

  sched.run_for(sim::seconds(4));

  auto cams = runtime.directory().lookup(
      core::Query().digital_output(MimeType::of("image/jpeg")).platform("bluetooth"));
  auto tvs = runtime.directory().lookup(
      core::Query().digital_input(MimeType::of("image/*")).platform("upnp"));
  if (cams.empty() || tvs.empty()) {
    std::cerr << "discovery incomplete\n";
    return 1;
  }

  apps::G2UI atlas(runtime, /*radius=*/5.0);
  // Floor plan: TV in the kitchen (0,0), storage in the study (100,100),
  // camera starts in the hallway (50,50) — near nothing.
  if (!atlas.place(tvs[0].id, {0, 0}).ok() ||
      !atlas.place(storage_id, {100, 100}).ok() ||
      !atlas.place(cams[0].id, {50, 50}).ok()) {
    return 1;
  }
  std::cout << "Placed 3 gadgets; sessions: " << atlas.sessions().size() << "\n";

  // Drag the camera next to the TV → geoplay.
  (void)atlas.move(cams[0].id, {2, 1});
  std::cout << "Camera moved beside TV; sessions: " << atlas.sessions().size() << "\n";
  for (const auto& s : atlas.sessions()) std::cout << "  " << s.description << "\n";
  camera.shutter(Bytes(18000, 0xD8), "geoplay.jpg");
  sched.run_for(sim::seconds(3));
  std::cout << "TV rendered " << tv.rendered().size() << " image(s)\n";

  // Drag the camera to the study → geoplay ends, geostore begins.
  (void)atlas.move(cams[0].id, {99, 99});
  std::cout << "Camera moved beside storage; sessions: " << atlas.sessions().size() << "\n";
  camera.shutter(Bytes(22000, 0xD8), "geostore.jpg");
  sched.run_for(sim::seconds(3));
  std::cout << "Storage archived " << storage_raw->count() << " image(s)\n";

  // Shoot once more from the hallway: no co-location, nothing flows.
  (void)atlas.move(cams[0].id, {50, 50});
  camera.shutter(Bytes(10000, 0xD8), "nowhere.jpg");
  sched.run_for(sim::seconds(3));

  bool ok = tv.rendered().size() == 1 && storage_raw->count() == 1 &&
            atlas.sessions().empty();
  std::cout << (ok ? "G2UI ATLAS OK" : "G2UI ATLAS INCOMPLETE") << "\n";
  return ok ? 0 : 1;
}
